package programs

import (
	"qithread/internal/workload"
)

// registerImageMagick adds the 14 ImageMagick utilities. ImageMagick
// parallelizes pixel passes with OpenMP: each filter is a handful of
// "#pragma omp parallel for" regions over image rows (the paper uses an 8K
// image), executed by a persistent libgomp team whose region barriers are
// the branched-post construct of Figure 3. All 14 carry soft-barrier hints
// ('+'). convert_paint_effect is the program where WakeAMAP slightly hurts
// (Section 5.2: −7.24% → +3.39%).
func registerImageMagick() {
	type im struct {
		name    string
		regions int
		work    int64
		master  int64
	}
	const threads = 16
	const rows = 1024 // 8K image rows, bucketed
	utils := []im{
		{name: "compare", regions: 3, work: 120, master: 300},
		{name: "compare_channel_red", regions: 3, work: 100, master: 260},
		{name: "compare_compose", regions: 4, work: 130, master: 320},
		{name: "convert_blur", regions: 4, work: 220, master: 380},
		{name: "convert_charcoal_effect", regions: 9, work: 180, master: 420},
		{name: "convert_draw", regions: 2, work: 150, master: 280},
		{name: "convert_edge_detect", regions: 5, work: 200, master: 340},
		{name: "convert_fft", regions: 6, work: 240, master: 400},
		{name: "convert_paint_effect", regions: 5, work: 260, master: 360},
		{name: "convert_sharpen", regions: 4, work: 210, master: 330},
		{name: "convert_shear", regions: 4, work: 170, master: 310},
		{name: "mogrify_resize", regions: 3, work: 190, master: 350},
		{name: "mogrify_segment", regions: 7, work: 230, master: 430},
		{name: "montage", regions: 6, work: 160, master: 520},
	}
	for _, u := range utils {
		u := u
		register(Spec{
			Name: u.name, Suite: "imagemagick", Threads: threads,
			Hints: workload.Hints{SoftBarrier: true},
			Build: func(p workload.Params) workload.App {
				return workload.OpenMPFor(workload.OpenMPForConfig{
					Threads: threads, Regions: u.regions, Iters: rows,
					WorkPerIter: u.work, MasterWork: u.master,
					SoftBarrier: true,
				}, p)
			},
		})
	}
}

// registerSTL adds the 33 libstdc++-v3 parallel-mode STL algorithms. Each is
// one or two OpenMP regions over the container; reductions (accumulate,
// count, inner_product, ...) fold partial results under a lock, and the
// multi-pass sorts run more regions. All carry soft-barrier hints ('+')
// except transform, matching Figure 8. The paper notes CreateAll hurts
// partial_sort (Section 5.2: −1.9% → +16.38%).
func registerSTL() {
	type stl struct {
		name    string
		regions int
		work    int64
		reduce  bool
		noHint  bool
	}
	const threads = 16
	const elems = 2048 // element buckets per region
	algos := []stl{
		{name: "accumulate", regions: 1, work: 60, reduce: true},
		{name: "adjacent_difference", regions: 1, work: 70},
		{name: "adjacent_find_notfound", regions: 1, work: 55},
		{name: "count", regions: 1, work: 50, reduce: true},
		{name: "count_if", regions: 1, work: 60, reduce: true},
		{name: "equal", regions: 1, work: 55},
		{name: "find_firstof_notfound", regions: 1, work: 80},
		{name: "find_if_notfound", regions: 1, work: 65},
		{name: "find_notfound", regions: 1, work: 55},
		{name: "for_each", regions: 1, work: 75},
		{name: "generate", regions: 1, work: 60},
		{name: "inner_product", regions: 1, work: 70, reduce: true},
		{name: "lexicographical_compare", regions: 1, work: 60},
		{name: "max_element", regions: 1, work: 50, reduce: true},
		{name: "merge", regions: 2, work: 80},
		{name: "min_element", regions: 1, work: 50, reduce: true},
		{name: "mismatch", regions: 1, work: 55},
		{name: "nth_element", regions: 3, work: 90},
		{name: "partial_sort", regions: 4, work: 95},
		{name: "partial_sum", regions: 2, work: 70},
		{name: "partition", regions: 2, work: 85},
		{name: "random_shuffle", regions: 1, work: 65},
		{name: "replace_if", regions: 1, work: 60},
		{name: "search_n_notfound", regions: 1, work: 75},
		{name: "search_notfound", regions: 1, work: 70},
		{name: "set_difference", regions: 2, work: 80},
		{name: "set_intersection", regions: 2, work: 75},
		{name: "set_symmetric_difference", regions: 2, work: 85},
		{name: "set_union", regions: 2, work: 80},
		{name: "sort", regions: 5, work: 100},
		{name: "stable_sort", regions: 6, work: 105},
		{name: "transform", regions: 1, work: 65, noHint: true},
		{name: "unique_copy", regions: 2, work: 70},
	}
	for _, a := range algos {
		a := a
		register(Spec{
			Name: "stl_" + a.name, Suite: "stl", Threads: threads,
			Hints: workload.Hints{SoftBarrier: !a.noHint},
			Build: func(p workload.Params) workload.App {
				return workload.OpenMPFor(workload.OpenMPForConfig{
					Threads: threads, Regions: a.regions, Iters: elems,
					WorkPerIter: a.work, MasterWork: 100,
					ReduceLock: a.reduce, SoftBarrier: !a.noHint,
				}, p)
			},
		})
	}
}

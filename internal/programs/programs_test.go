package programs

import (
	"testing"

	"qithread"
	"qithread/internal/trace"
	"qithread/internal/workload"
)

// tinyParams keeps catalog integration tests fast: 4 threads, 2% scale.
var tinyParams = workload.Params{Threads: 4, Scale: 0.02, InputSeed: 7}

func TestCatalogHas108Programs(t *testing.T) {
	if got := len(All()); got != 108 {
		t.Fatalf("catalog has %d programs, want 108", got)
	}
	counts := map[string]int{}
	for _, s := range All() {
		counts[s.Suite]++
	}
	want := map[string]int{
		"splash2x": 14, "npb": 10, "parsec": 15, "phoenix": 14,
		"realworld": 8, "imagemagick": 14, "stl": 33,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d programs, want %d", suite, counts[suite], n)
		}
	}
}

func TestFindAndNames(t *testing.T) {
	if _, ok := Find("pbzip2_compress"); !ok {
		t.Fatal("pbzip2_compress missing")
	}
	if _, ok := Find("nonexistent"); ok {
		t.Fatal("Find accepted a bogus name")
	}
	if len(Names()) != 108 {
		t.Fatalf("Names() returned %d entries", len(Names()))
	}
}

// TestEveryProgramEveryMode is the whole-catalog integration test: every
// program must run to completion under every scheduling configuration and
// produce the same output in all of them.
func TestEveryProgramEveryMode(t *testing.T) {
	configs := []qithread.Config{
		{Mode: qithread.Nondet},
		{Mode: qithread.RoundRobin, Policies: qithread.NoPolicies},
		{Mode: qithread.RoundRobin, Policies: qithread.NoPolicies, SoftBarriers: true},
		{Mode: qithread.RoundRobin, Policies: qithread.NoPolicies, SoftBarriers: true, PCS: true},
		{Mode: qithread.RoundRobin, Policies: qithread.AllPolicies},
		{Mode: qithread.LogicalClock},
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			app := spec.Build(tinyParams)
			var ref uint64
			for i, cfg := range configs {
				rt := qithread.New(cfg)
				out := app(rt)
				if i == 0 {
					ref = out
					continue
				}
				if out != ref {
					t.Fatalf("%s: output %#x under %v/%v, want %#x (nondet)",
						spec.Name, out, cfg.Mode, cfg.Policies, ref)
				}
			}
		})
	}
}

// TestEveryProgramDeterministic verifies that every catalog program yields a
// bit-identical schedule across repeated runs under the QiThread default
// configuration.
func TestEveryProgramDeterministic(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			app := spec.Build(tinyParams)
			cfg := qithread.Config{Mode: qithread.RoundRobin, Policies: qithread.AllPolicies, Record: true}
			var ref uint64
			for run := 0; run < 2; run++ {
				rt := qithread.New(cfg)
				app(rt)
				h := trace.Hash(rt.Trace())
				if run == 0 {
					ref = h
				} else if h != ref {
					t.Fatalf("%s: schedule hash differs across runs: %#x vs %#x", spec.Name, h, ref)
				}
			}
		})
	}
}

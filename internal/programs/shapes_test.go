package programs

import (
	"testing"

	"qithread"
	"qithread/internal/workload"
)

// shapeParams is large enough for scheduling shapes to be meaningful but
// small enough for CI.
var shapeParams = workload.Params{Scale: 0.3, InputSeed: 42}

func makespan(spec Spec, cfg qithread.Config, p workload.Params) float64 {
	rt := qithread.New(cfg)
	spec.Build(p)(rt)
	return float64(rt.VirtualMakespan())
}

func normOf(spec Spec, cfg qithread.Config, p workload.Params) float64 {
	base := makespan(spec, qithread.Config{Mode: qithread.VirtualParallel}, p)
	return makespan(spec, cfg, p) / base
}

var (
	vanillaCfg = qithread.Config{Mode: qithread.RoundRobin}
	parrotCfg  = qithread.Config{Mode: qithread.RoundRobin, SoftBarriers: true}
	qiCfg      = qithread.Config{Mode: qithread.RoundRobin, Policies: qithread.AllPolicies}
)

// TestSoftBarrierHelpsHintedPrograms: for a sample of '+' programs from
// different suites, Parrot's soft barriers must improve on vanilla round
// robin — otherwise the hint wiring is broken.
func TestSoftBarrierHelpsHintedPrograms(t *testing.T) {
	for _, name := range []string{"pbzip2_compress", "radix", "bt-l", "histogram-pthread", "convert_blur", "stl_sort", "swaptions"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := Find(name)
			if !ok {
				t.Fatalf("missing %s", name)
			}
			if !spec.Hints.SoftBarrier {
				t.Fatalf("%s should carry a soft-barrier hint", name)
			}
			v := normOf(spec, vanillaCfg, shapeParams)
			p := normOf(spec, parrotCfg, shapeParams)
			if p >= v*0.9 {
				t.Errorf("soft barrier did not help %s: vanilla %.2fx, parrot %.2fx", name, v, p)
			}
		})
	}
}

// TestQiThreadMatchesParrotOnSample: the headline claim on a cross-suite
// sample — QiThread without annotations is at least in Parrot's
// neighbourhood (within 2x) and strictly better than vanilla on programs
// vanilla serializes.
func TestQiThreadMatchesParrotOnSample(t *testing.T) {
	for _, name := range []string{"barnes", "ep-l", "blackscholes", "histogram-pthread", "aget", "convert_shear", "stl_for_each"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Find(name)
			v := normOf(spec, vanillaCfg, shapeParams)
			p := normOf(spec, parrotCfg, shapeParams)
			q := normOf(spec, qiCfg, shapeParams)
			if q > 2*p && q > 1.5 {
				t.Errorf("%s: QiThread %.2fx far behind Parrot %.2fx", name, q, p)
			}
			if v > 5 && q > v*0.6 {
				t.Errorf("%s: QiThread %.2fx did not fix serialization (vanilla %.2fx)", name, q, v)
			}
		})
	}
}

// TestPCSProgramsCarryPCSHints: the '*' markers of Figure 8 must be wired to
// the six programs the paper applies PCS hints to.
func TestPCSProgramsCarryPCSHints(t *testing.T) {
	want := map[string]bool{
		"cholesky": true, "fmm": true, "raytrace": true,
		"ua-l": true, "fluidanimate": true, "pfscan": true,
	}
	for _, s := range All() {
		if s.Hints.PCS != want[s.Name] {
			t.Errorf("%s: PCS hint = %v, want %v", s.Name, s.Hints.PCS, want[s.Name])
		}
	}
}

// TestSTLHintMarkers: all STL programs carry soft-barrier hints except
// transform, matching Figure 8's markers.
func TestSTLHintMarkers(t *testing.T) {
	for _, s := range BySuite("stl") {
		want := s.Name != "stl_transform"
		if s.Hints.SoftBarrier != want {
			t.Errorf("%s: soft-barrier hint = %v, want %v", s.Name, s.Hints.SoftBarrier, want)
		}
	}
}

// TestOpenMPSuitesRespondToBranchedWake: ImageMagick and NPB programs (the
// gomp-structured suites) must improve when BranchedWake lands on top of the
// other four policies, reproducing the paper's "all 20 BranchedWake
// beneficiaries use OpenMP".
func TestOpenMPSuitesRespondToBranchedWake(t *testing.T) {
	pre := qithread.Config{Mode: qithread.RoundRobin,
		Policies: qithread.BoostBlocked | qithread.CreateAll | qithread.CSWhole | qithread.WakeAMAP}
	for _, name := range []string{"convert_sharpen", "mg-l", "stl_partition"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := Find(name)
			p := workload.Params{Scale: 0.6, InputSeed: 42}
			without := makespan(spec, pre, p)
			with := makespan(spec, qiCfg, p)
			if with >= without {
				t.Errorf("%s: BranchedWake did not help: %v -> %v", name, without, with)
			}
		})
	}
}

// TestNonOpenMPUnaffectedByBranchedWake: BranchedWake must not change
// non-OpenMP programs at all (their traces contain no dummy ops).
func TestNonOpenMPUnaffectedByBranchedWake(t *testing.T) {
	pre := qithread.Config{Mode: qithread.RoundRobin,
		Policies: qithread.BoostBlocked | qithread.CreateAll | qithread.CSWhole | qithread.WakeAMAP}
	for _, name := range []string{"barnes", "pbzip2_compress", "aget", "redis"} {
		spec, _ := Find(name)
		without := makespan(spec, pre, shapeParams)
		with := makespan(spec, qiCfg, shapeParams)
		if with != without {
			t.Errorf("%s: BranchedWake changed a non-OpenMP program: %v -> %v", name, without, with)
		}
	}
}

// TestThreadOverride: Params.Threads rescales every engine.
func TestThreadOverride(t *testing.T) {
	spec, _ := Find("streamcluster")
	p := workload.Params{Scale: 0.05, InputSeed: 1, Threads: 3}
	rt := qithread.New(qithread.Config{Mode: qithread.RoundRobin})
	spec.Build(p)(rt)
	// 3 workers including main participant -> at most 3 live simultaneously
	// (plus main), far below the 16-thread default.
	if got := rt.ThreadsCreated(); got > 4 {
		t.Errorf("threads created = %d with override 3", got)
	}
}

package programs

import (
	"qithread/internal/workload"
)

// registerPhoenix adds the 14 Phoenix 2 programs: seven algorithms, each in
// two implementations — the map-reduce library version (task queue +
// barriers) and the hand-written pthreads version (the static
// create/compute/join structure of Figure 2). All Phoenix programs carry
// soft-barrier hints ('+') in the paper.
func registerPhoenix() {
	type alg struct {
		name       string
		mapTasks   int
		mapWork    int64
		redTasks   int
		redWork    int64
		staticWork int64 // per-thread work of the pthread version
	}
	const threads = 16
	algs := []alg{
		{name: "histogram", mapTasks: 256, mapWork: 500, redTasks: 64, redWork: 120, staticWork: 9000},
		{name: "kmeans", mapTasks: 320, mapWork: 650, redTasks: 96, redWork: 200, staticWork: 14000},
		{name: "linear_regression", mapTasks: 224, mapWork: 420, redTasks: 32, redWork: 80, staticWork: 7000},
		{name: "matrix_multiply", mapTasks: 256, mapWork: 1500, redTasks: 16, redWork: 60, staticWork: 26000},
		{name: "pca", mapTasks: 288, mapWork: 900, redTasks: 64, redWork: 180, staticWork: 17000},
		{name: "string_match", mapTasks: 240, mapWork: 380, redTasks: 16, redWork: 50, staticWork: 6500},
		{name: "word_count", mapTasks: 288, mapWork: 520, redTasks: 128, redWork: 260, staticWork: 11000},
	}
	for _, a := range algs {
		a := a
		register(Spec{
			Name: a.name, Suite: "phoenix", Threads: threads,
			Hints: workload.Hints{SoftBarrier: true},
			Build: func(p workload.Params) workload.App {
				return workload.MapReduce(workload.MapReduceConfig{
					Workers: threads, MapTasks: a.mapTasks, ReduceTasks: a.redTasks,
					MapWork: a.mapWork, ReduceWork: a.redWork,
					Dynamic: true, SoftBarrier: true,
				}, p)
			},
		})
		register(Spec{
			Name: a.name + "-pthread", Suite: "phoenix", Threads: threads,
			Hints: workload.Hints{SoftBarrier: true},
			Build: func(p workload.Params) workload.App {
				return workload.CreateJoin(workload.CreateJoinConfig{
					Threads: threads, Work: a.staticWork, ParentWorks: false,
					SoftBarrier: true,
				}, p)
			},
		})
	}
}

// registerRealWorld adds the eight real-world programs of Figure 8.
func registerRealWorld() {
	const threads = 16

	// pbzip2 compression: Figure 1a verbatim — producer reads blocks,
	// consumers compress. Compression is far more expensive than reading,
	// the imbalance that serializes vanilla round robin. WakeAMAP gives
	// pbzip2 compress an almost 1000% speedup in the paper ('+').
	register(Spec{
		Name: "pbzip2_compress", Suite: "realworld", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.ProdCons(workload.ProdConsConfig{
				Producers: 1, Consumers: threads, Blocks: 128,
				ProduceWork: 220, ConsumeWork: 16000,
				QueueCap: 2 * threads, SoftBarrier: true,
			}, p)
		},
	})
	// pbzip2 decompression: same structure, ~3x lighter consumer work
	// (decompression is cheaper), giving the smaller 300% speedup ('+').
	register(Spec{
		Name: "pbzip2_decompress", Suite: "realworld", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.ProdCons(workload.ProdConsConfig{
				Producers: 1, Consumers: threads, Blocks: 128,
				ProduceWork: 220, ConsumeWork: 5200,
				QueueCap: 2 * threads, SoftBarrier: true,
			}, p)
		},
	})
	// aget: N segment downloaders created in a loop, each mixing "network"
	// compute with brief progress-lock updates, then joined. The paper notes
	// CreateAll slightly hurts aget (Section 5.2).
	register(Spec{
		Name: "aget", Suite: "realworld", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.CreateJoin(workload.CreateJoinConfig{
				Threads: threads, Work: 10000,
				ProgressLock: true, ProgressEach: 500,
			}, p)
		},
	})
	// pfscan: pre-filled file queue, highly variable file sizes, PCS hint on
	// the result lock ('*').
	register(Spec{
		Name: "pfscan", Suite: "realworld", Threads: threads,
		Hints: workload.Hints{PCS: true},
		Build: func(p workload.Params) workload.App {
			return workload.TaskQueue(workload.TaskQueueConfig{
				Workers: threads, Tasks: 384, TaskWorkMin: 120, TaskWorkMax: 3600,
				ResultWork: 45, PCSResult: true,
			}, p)
		},
	})
	// bdb_bench3n: Berkeley DB's read-mostly transaction benchmark.
	register(Spec{
		Name: "bdb_bench3n", Suite: "realworld", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.RWMix(workload.RWMixConfig{
				Workers: threads, Ops: 160, ReadPct: 90,
				ReadWork: 700, WriteWork: 1600, LogEvery: 4, LogWork: 90,
			}, p)
		},
	})
	// openldap: directory server with a worker pool serving a read-heavy
	// query mix over rwlocked state.
	register(Spec{
		Name: "openldap", Suite: "realworld", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.RWMix(workload.RWMixConfig{
				Workers: threads, Ops: 200, ReadPct: 95,
				ReadWork: 520, WriteWork: 1200, LogEvery: 8, LogWork: 60,
			}, p)
		},
	})
	// mencoder: demux/encode producer-consumer with a heavy encode side
	// ('+').
	register(Spec{
		Name: "mencoder", Suite: "realworld", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.ProdCons(workload.ProdConsConfig{
				Producers: 1, Consumers: threads, Blocks: 160,
				ProduceWork: 350, ConsumeWork: 6800,
				QueueCap: threads, SoftBarrier: true,
			}, p)
		},
	})
	// redis: event-loop listener feeding a small worker pool that updates
	// the shared dictionary under a mutex.
	register(Spec{
		Name: "redis", Suite: "realworld", Threads: 4,
		Build: func(p workload.Params) workload.App {
			return workload.Server(workload.ServerConfig{
				Workers: 4, Requests: 512,
				AcceptWork: 120, ParseWork: 420, StateWork: 110,
			}, p)
		},
	})
}

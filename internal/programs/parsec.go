package programs

import (
	"qithread/internal/workload"
)

// registerParsec adds the 15 PARSEC 2.0 benchmarks of Figure 8. PARSEC mixes
// data-parallel kernels (blackscholes, swaptions), barrier-phase codes
// (streamcluster, canneal, bodytrack, facesim, fluidanimate), pipelines
// (dedup, ferret, x264) and the vips idle-queue dispatcher that defeats
// WakeAMAP (Section 5.2).
func registerParsec() {
	const threads = 16

	// blackscholes: one big data-parallel phase repeated a few times.
	register(Spec{
		Name: "blackscholes", Suite: "parsec", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 8, Work: 9000,
			}, p)
		},
	})
	register(Spec{
		Name: "blackscholes-openmp", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.OpenMPFor(workload.OpenMPForConfig{
				Threads: threads, Regions: 8, Iters: 512, WorkPerIter: 280,
				SoftBarrier: true,
			}, p)
		},
	})

	// bodytrack: per-frame particle-filter phases with imbalance ('+').
	register(Spec{
		Name: "bodytrack", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 48, Work: 2600,
				Imbalance: []int{100, 130, 75, 110, 90}, LockEvery: 3, CSWork: 80,
				SoftBarrier: true,
			}, p)
		},
	})
	register(Spec{
		Name: "bodytrack-openmp", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.OpenMPFor(workload.OpenMPForConfig{
				Threads: threads, Regions: 40, Iters: 320, WorkPerIter: 150,
				MasterWork: 500, SoftBarrier: true,
			}, p)
		},
	})

	// canneal: annealing rounds synchronized with ad-hoc atomics (one of the
	// busy-wait programs patched with sched_yield).
	register(Spec{
		Name: "canneal", Suite: "parsec", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 24, Work: 3600, AdHoc: true,
			}, p)
		},
	})

	// dedup: 3-stage compression pipeline over bounded queues.
	register(Spec{
		Name: "dedup", Suite: "parsec", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.Pipeline(workload.PipelineConfig{
				Stages: []workload.StageConfig{
					{Workers: 4, Work: 700},  // chunk
					{Workers: 8, Work: 2400}, // compress
					{Workers: 4, Work: 500},  // write
				},
				Items: 256, QueueCap: 16, SourceWork: 120,
			}, p)
		},
	})

	// facesim: physics phases with reductions ('+').
	register(Spec{
		Name: "facesim", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 56, Work: 3000,
				Imbalance: []int{100, 90, 115}, LockEvery: 2, CSWork: 70,
				SoftBarrier: true,
			}, p)
		},
	})

	// ferret: 6-stage similarity-search pipeline; the ranking stage
	// dominates. WakeAMAP gives ferret >150% speedup in the paper ('+').
	register(Spec{
		Name: "ferret", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.Pipeline(workload.PipelineConfig{
				Stages: []workload.StageConfig{
					{Workers: 2, Work: 300},  // segment
					{Workers: 2, Work: 500},  // extract
					{Workers: 4, Work: 1200}, // index
					{Workers: 8, Work: 4200}, // rank (dominant)
				},
				Items: 192, QueueCap: 12, SourceWork: 100, SoftBarrier: true,
			}, p)
		},
	})

	// fluidanimate: fine-grained cell locks every round ('*').
	register(Spec{
		Name: "fluidanimate", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{PCS: true},
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 40, Work: 1600,
				LockEvery: 1, CSWork: 260, PCSLock: true,
			}, p)
		},
	})

	// freqmine-openmp: FP-growth mining passes ('+').
	register(Spec{
		Name: "freqmine-openmp", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.OpenMPFor(workload.OpenMPForConfig{
				Threads: threads, Regions: 20, Iters: 288, WorkPerIter: 320,
				MasterWork: 600, ReduceLock: true, SoftBarrier: true,
			}, p)
		},
	})

	// rtview/raytrace: PARSEC's interactive raytracer, a tile task queue.
	register(Spec{
		Name: "rtview_raytrace", Suite: "parsec", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.TaskQueue(workload.TaskQueueConfig{
				Workers: threads, Tasks: 512, TaskWorkMin: 300, TaskWorkMax: 1500,
				ResultWork: 30,
			}, p)
		},
	})

	// streamcluster: the most barrier-intensive PARSEC program.
	register(Spec{
		Name: "streamcluster", Suite: "parsec", Threads: threads,
		Build: func(p workload.Params) workload.App {
			return workload.ForkJoin(workload.ForkJoinConfig{
				Threads: threads, Rounds: 120, Work: 900,
			}, p)
		},
	})

	// swaptions: static partition of independent swaption simulations ('+').
	register(Spec{
		Name: "swaptions", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.CreateJoin(workload.CreateJoinConfig{
				Threads: threads, Work: 48000, SoftBarrier: true,
			}, p)
		},
	})

	// vips: idle queue with one condition variable per consumer — WakeAMAP
	// cannot track the waiters and no policy helps (Section 5.2) ('+').
	register(Spec{
		Name: "vips", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.Vips(workload.VipsConfig{
				Consumers: threads, Items: 320, DispatchWork: 90, ItemWork: 1500,
				SoftBarrier: true,
			}, p)
		},
	})

	// x264: sliding-window frame pipeline with ad-hoc row progress ('+').
	register(Spec{
		Name: "x264", Suite: "parsec", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.X264(workload.X264Config{
				Workers: threads, Frames: 96, RowsPerFrame: 8, RowWork: 420,
				Lag: 2, SoftBarrier: true,
			}, p)
		},
	})
}

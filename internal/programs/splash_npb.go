package programs

import (
	"qithread/internal/workload"
)

// registerSplash adds the 14 SPLASH-2x benchmarks. SPLASH programs are
// fork-join scientific kernels proceeding in barrier-separated phases; the
// main thread participates as a worker. radiosity and raytrace distribute
// tasks from contended queues, which is why the paper gives radiosity a soft
// barrier and raytrace a PCS hint on its task lock; cholesky and fmm carry
// PCS hints on their fine-grained locks.
func registerSplash() {
	type fj struct {
		name      string
		rounds    int
		work      int64
		imbalance []int
		lockEvery int
		csWork    int64
		hints     workload.Hints
		adHoc     bool
	}
	const threads = 16
	fjs := []fj{
		// barnes: octree phases, mildly imbalanced particle partitions.
		{name: "barnes", rounds: 40, work: 5000, imbalance: []int{100, 115, 90, 105}},
		// cholesky: supernodal factorization, contended task locks (PCS).
		{name: "cholesky", rounds: 60, work: 1500, lockEvery: 1, csWork: 120,
			imbalance: []int{100, 140, 70, 120, 85}, hints: workload.Hints{PCS: true}},
		// fft: transpose phases separated by all-thread barriers.
		{name: "fft", rounds: 12, work: 9000},
		// fmm: adaptive multipole, heavy lock traffic (PCS).
		{name: "fmm", rounds: 50, work: 2200, lockEvery: 1, csWork: 200,
			imbalance: []int{100, 160, 60, 130}, hints: workload.Hints{PCS: true}},
		// lu_cb / lu_ncb: blocked LU with diagonal-block imbalance.
		{name: "lu_cb", rounds: 48, work: 3200, imbalance: []int{100, 80, 120, 95}},
		{name: "lu_ncb", rounds: 48, work: 3600, imbalance: []int{100, 85, 115, 100}},
		// ocean: stencil rounds, boundary threads do more work.
		{name: "ocean_cp", rounds: 60, work: 2800, imbalance: []int{115, 100, 100, 115}},
		{name: "ocean_ncp", rounds: 60, work: 3200, imbalance: []int{120, 100, 100, 120}},
		// radix: rank/permute rounds with prefix-sum reduction locks.
		{name: "radix", rounds: 24, work: 4200, lockEvery: 2, csWork: 90,
			hints: workload.Hints{SoftBarrier: true}},
		// volrend: ray casting over an octree with task imbalance.
		{name: "volrend", rounds: 36, work: 2400, imbalance: []int{100, 70, 130, 95, 110}},
		// water_nsquared / water_spatial: molecular dynamics rounds with
		// reduction locks.
		{name: "water_nsquared", rounds: 40, work: 3800, lockEvery: 4, csWork: 60},
		{name: "water_spatial", rounds: 40, work: 3400, lockEvery: 4, csWork: 60},
	}
	for _, f := range fjs {
		f := f
		register(Spec{
			Name: f.name, Suite: "splash2x", Threads: threads, Hints: f.hints,
			Build: func(p workload.Params) workload.App {
				return workload.ForkJoin(workload.ForkJoinConfig{
					Threads: threads, Rounds: f.rounds, Work: f.work,
					Imbalance: f.imbalance, LockEvery: f.lockEvery, CSWork: f.csWork,
					PCSLock: f.hints.PCS, SoftBarrier: f.hints.SoftBarrier, AdHoc: f.adHoc,
				}, p)
			},
		})
	}
	// radiosity: hierarchical task queue with per-task locks ('+').
	register(Spec{
		Name: "radiosity", Suite: "splash2x", Threads: threads,
		Hints: workload.Hints{SoftBarrier: true},
		Build: func(p workload.Params) workload.App {
			return workload.TaskQueue(workload.TaskQueueConfig{
				Workers: threads, Tasks: 480, TaskWorkMin: 400, TaskWorkMax: 2400,
				ResultWork: 40, SoftBarrier: true,
			}, p)
		},
	})
	// raytrace: tile task queue with a contended task lock ('*').
	register(Spec{
		Name: "raytrace", Suite: "splash2x", Threads: threads,
		Hints: workload.Hints{PCS: true},
		Build: func(p workload.Params) workload.App {
			return workload.TaskQueue(workload.TaskQueueConfig{
				Workers: threads, Tasks: 640, TaskWorkMin: 200, TaskWorkMax: 1800,
				ResultWork: 25, PCSResult: true,
			}, p)
		},
	})
}

// registerNPB adds the 10 NPB 3.3.1 OpenMP benchmarks (bt-l ... ua-l in
// Figure 8). They run under the libgomp team model: parallel-for regions
// ending in the branched semaphore barrier of Figure 3, which is the
// structure the BranchedWake policy was designed for — the paper reports all
// 20 programs that BranchedWake benefits use OpenMP. All NPB programs carry
// soft-barrier hints ('+'); ua-l additionally carries a PCS hint ('*').
func registerNPB() {
	type omp struct {
		name    string
		regions int
		iters   int
		work    int64
		master  int64
		reduce  bool
		pcs     bool
	}
	const threads = 16
	benches := []omp{
		{name: "bt-l", regions: 40, iters: 384, work: 160, master: 300},
		{name: "cg-l", regions: 50, iters: 256, work: 120, master: 150, reduce: true},
		{name: "dc-l", regions: 16, iters: 192, work: 520, master: 800},
		{name: "ep-l", regions: 2, iters: 512, work: 2600, reduce: true},
		{name: "ft-l", regions: 24, iters: 320, work: 260, master: 400},
		{name: "is-l", regions: 20, iters: 256, work: 140, master: 120, reduce: true},
		{name: "lu-l", regions: 60, iters: 320, work: 110, master: 100},
		{name: "mg-l", regions: 44, iters: 288, work: 130, master: 200},
		{name: "sp-l", regions: 48, iters: 352, work: 140, master: 220},
		{name: "ua-l", regions: 56, iters: 288, work: 150, master: 260, pcs: true},
	}
	for _, b := range benches {
		b := b
		hints := workload.Hints{SoftBarrier: true, PCS: b.pcs}
		register(Spec{
			Name: b.name, Suite: "npb", Threads: threads, Hints: hints,
			Build: func(p workload.Params) workload.App {
				if b.pcs {
					// ua-l's PCS hint covers its contended update locks;
					// model it with the fork-join engine's PCS reduction
					// alongside the OpenMP-style phases.
					return workload.ForkJoin(workload.ForkJoinConfig{
						Threads: threads, Rounds: b.regions, Work: b.work * int64(b.iters) / int64(threads),
						LockEvery: 1, CSWork: 180, PCSLock: true, SoftBarrier: true,
					}, p)
				}
				return workload.OpenMPFor(workload.OpenMPForConfig{
					Threads: threads, Regions: b.regions, Iters: b.iters,
					WorkPerIter: b.work, MasterWork: b.master,
					ReduceLock: b.reduce, SoftBarrier: true,
				}, p)
			},
		})
	}
}

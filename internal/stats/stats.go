// Package stats provides the small statistics toolkit the experiment harness
// uses: robust central tendency for repeated timings, normalized overheads,
// and the aggregate counts Section 5 of the paper reports.
package stats

import (
	"math"
	"sort"
	"time"
)

// Median returns the median of ds (0 for an empty slice).
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the minimum of ds (0 for an empty slice).
func Min(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean of xs (NaN for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Normalized returns t divided by base as a ratio (the paper's
// "execution time normalized to nondeterministic execution"). A base of zero
// yields NaN.
func Normalized(t, base time.Duration) float64 {
	if base == 0 {
		return math.NaN()
	}
	return float64(t) / float64(base)
}

// OverheadPct converts a normalized time to the percentage overhead the
// paper quotes (−3.11%, 14.52%, ...).
func OverheadPct(normalized float64) float64 {
	return (normalized - 1) * 100
}

// MaxDeviationPct returns the maximum |x−mean|/mean over xs in percent, the
// paper's scalability-variation metric ("varied within 42% from each
// program's mean overhead across four thread counts").
func MaxDeviationPct(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	var worst float64
	for _, x := range xs {
		d := math.Abs(x-m) / math.Abs(m) * 100
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Counts aggregates how a set of normalized ratios compares against a
// reference, using the paper's thresholds: Comparable is ratio ≤ 1.10,
// Speedup is ratio < 0.90, Slower is ratio > 1.10.
type Counts struct {
	Comparable int
	Speedup    int
	Slower     int
	Total      int
}

// Compare computes Counts for ratios of candidate time over reference time.
func Compare(ratios []float64) Counts {
	var c Counts
	for _, r := range ratios {
		if math.IsNaN(r) {
			continue
		}
		c.Total++
		if r <= 1.10 {
			c.Comparable++
		}
		if r < 0.90 {
			c.Speedup++
		}
		if r > 1.10 {
			c.Slower++
		}
	}
	return c
}

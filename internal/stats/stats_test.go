package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []time.Duration
		want time.Duration
	}{
		{nil, 0},
		{[]time.Duration{5}, 5},
		{[]time.Duration{3, 1, 2}, 2},
		{[]time.Duration{4, 1, 3, 2}, 2}, // (2+3)/2 truncated
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestMedianBounds: the median lies within [min, max] and does not mutate
// its input.
func TestMedianBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return Median(nil) == 0
		}
		ds := make([]time.Duration, len(raw))
		orig := make([]time.Duration, len(raw))
		lo, hi := time.Duration(math.MaxInt64), time.Duration(0)
		for i, r := range raw {
			ds[i] = time.Duration(r)
			orig[i] = ds[i]
			if ds[i] < lo {
				lo = ds[i]
			}
			if ds[i] > hi {
				hi = ds[i]
			}
		}
		m := Median(ds)
		if m < lo || m > hi {
			return false
		}
		for i := range ds {
			if ds[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMean(t *testing.T) {
	if Min([]time.Duration{3, 1, 2}) != 1 {
		t.Fatal("Min wrong")
	}
	if Min(nil) != 0 {
		t.Fatal("Min(nil) wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestNormalizedAndOverhead(t *testing.T) {
	if got := Normalized(150, 100); got != 1.5 {
		t.Fatalf("Normalized = %v", got)
	}
	if !math.IsNaN(Normalized(1, 0)) {
		t.Fatal("Normalized with zero base should be NaN")
	}
	if got := OverheadPct(1.5); math.Abs(got-50) > 1e-9 {
		t.Fatalf("OverheadPct = %v", got)
	}
	if got := OverheadPct(0.9689); got >= 0 {
		t.Fatalf("negative overhead expected, got %v", got)
	}
}

func TestMaxDeviationPct(t *testing.T) {
	if got := MaxDeviationPct([]float64{1, 1, 1}); got != 0 {
		t.Fatalf("deviation of constant series = %v", got)
	}
	got := MaxDeviationPct([]float64{1.0, 2.0}) // mean 1.5, dev 0.5/1.5
	if math.Abs(got-100.0/3) > 1e-9 {
		t.Fatalf("deviation = %v", got)
	}
}

// TestCompareCountsConsistent: Comparable+Slower == Total, Speedup ⊆
// Comparable.
func TestCompareCountsConsistent(t *testing.T) {
	f := func(raw []uint16) bool {
		ratios := make([]float64, len(raw))
		for i, r := range raw {
			ratios[i] = float64(r)/1000 + 0.001
		}
		c := Compare(ratios)
		return c.Comparable+c.Slower == c.Total && c.Speedup <= c.Comparable && c.Total == len(ratios)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareThresholds(t *testing.T) {
	c := Compare([]float64{0.5, 0.95, 1.05, 1.10, 1.2, math.NaN()})
	if c.Total != 5 {
		t.Fatalf("NaN not skipped: %+v", c)
	}
	if c.Speedup != 1 || c.Comparable != 4 || c.Slower != 1 {
		t.Fatalf("thresholds wrong: %+v", c)
	}
}

package logio

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

func writeFrames(t *testing.T, frames [][]byte, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for _, f := range frames {
		if err := fw.WriteFrame(f, compress); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func readFrames(b []byte) ([][]byte, error) {
	fr := NewFrameReader(bytes.NewReader(b))
	var out [][]byte
	for {
		p, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), p...))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := [][]byte{
		[]byte("a"),
		bytes.Repeat([]byte("deterministic "), 200), // compressible, > CompressMin
		{0, 1, 2, 255},
	}
	for _, compress := range []bool{false, true} {
		got, err := readFrames(writeFrames(t, frames, compress))
		if err != nil {
			t.Fatalf("compress=%v: read: %v", compress, err)
		}
		if len(got) != len(frames) {
			t.Fatalf("compress=%v: %d frames, want %d", compress, len(got), len(frames))
		}
		for i := range frames {
			if !bytes.Equal(got[i], frames[i]) {
				t.Errorf("compress=%v: frame %d mismatch", compress, i)
			}
		}
	}
}

func TestCompressionShrinks(t *testing.T) {
	frame := bytes.Repeat([]byte("deterministic "), 500)
	raw := writeFrames(t, [][]byte{frame}, false)
	comp := writeFrames(t, [][]byte{frame}, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed container %d bytes, raw %d", len(comp), len(raw))
	}
}

func TestTruncationDetected(t *testing.T) {
	full := writeFrames(t, [][]byte{bytes.Repeat([]byte("x"), 100)}, false)
	// Every strict prefix must fail: either a truncated frame or a missing
	// terminator, never a silent short read.
	for cut := 0; cut < len(full); cut++ {
		if _, err := readFrames(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(full))
		}
	}
	if _, err := readFrames(full); err != nil {
		t.Fatalf("full log failed: %v", err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	full := writeFrames(t, [][]byte{bytes.Repeat([]byte("y"), 64)}, false)
	// Flip each bit of the stored payload region; the CRC must catch it.
	// (Flipping header bytes may instead produce structural errors, which is
	// fine too — the invariant is "never silently wrong".)
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x10
		got, err := readFrames(mut)
		if err == nil && len(got) == 1 && bytes.Equal(got[0], bytes.Repeat([]byte("y"), 64)) {
			// A flip in trailing slack would be undetectable, but the format
			// has none: every byte is header, payload, CRC, or terminator.
			t.Fatalf("bit flip at byte %d produced the original payload with no error", i)
		}
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint
	if _, err := readFrames(buf.Bytes()); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame length not rejected: %v", err)
	}
}

func TestDecBounds(t *testing.T) {
	d := NewDec([]byte{0x05})
	if v := d.Uvarint(); v != 5 || d.Err() != nil {
		t.Fatalf("Uvarint = %d, err %v", v, d.Err())
	}
	if d.Bytes(3); d.Err() == nil {
		t.Fatal("Bytes past end did not error")
	}
	// Errors stick and subsequent reads are inert.
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("read after error = %d", v)
	}
}

func TestLineScannerLimit(t *testing.T) {
	long := strings.Repeat("a", MaxLine+10)
	sc := LineScanner(strings.NewReader(long))
	for sc.Scan() {
	}
	err := ScanErr(sc.Err(), "test", 0)
	if err == nil || !strings.Contains(err.Error(), "line limit") {
		t.Fatalf("overlong line error = %v", err)
	}
	// A line under the limit but over the 64KB bufio default must scan.
	mid := strings.Repeat("b", 200*1024)
	sc = LineScanner(strings.NewReader(mid + "\n"))
	if !sc.Scan() || sc.Text() != mid {
		t.Fatalf("200KB line failed to scan: %v", sc.Err())
	}
}

func TestSegmentListing(t *testing.T) {
	dir := t.TempDir()
	base := dir + "/run.qsched"
	for i := 0; i < 3; i++ {
		if err := writeFile(SegmentPath(base, i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0] != SegmentPath(base, 0) || segs[2] != SegmentPath(base, 2) {
		t.Fatalf("segments = %v", segs)
	}
}

func writeFile(path string) error {
	return os.WriteFile(path, []byte("seg"), 0o644)
}

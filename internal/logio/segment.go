package logio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Segment rotation. A long streaming run splits its binary log across
// numbered segment files — <base>.seg00000, <base>.seg00001, ... — each a
// complete, independently loadable log (own header, own terminator). Writers
// rotate at frame boundaries once a segment passes its size budget; readers
// list the segments in order and concatenate their decoded contents.

// SegmentPath returns the path of segment i of a rotated log.
func SegmentPath(base string, i int) string {
	return fmt.Sprintf("%s.seg%05d", base, i)
}

// ListSegments returns the existing segment files of base in segment order.
// Zero segments is not an error (callers decide what an empty log means);
// a gap in the numbering is, since it means a lost segment.
func ListSegments(base string) ([]string, error) {
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	prefix := name + ".seg"
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), prefix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	for i, p := range out {
		if want := SegmentPath(base, i); p != want {
			return nil, fmt.Errorf("logio: segment gap: found %s, want %s", p, want)
		}
	}
	return out, nil
}

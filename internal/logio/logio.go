// Package logio is the shared plumbing of qithread's on-disk log formats:
// the varint-framed, CRC32C-checksummed binary container used by binary
// schedule files (internal/trace, "qithread-schedule v3b") and binary ingress
// logs (internal/ingress, "qithread-ingress v2b"), plus the guarded text
// line scanner both text loaders share and the segment naming scheme of
// rotated long-run logs.
//
// # Container layout
//
// A binary log is a one-line text header (so format auto-detection reads a
// single line for text and binary files alike) followed by a sequence of
// frames and one terminator:
//
//	frame      := uvarint(storedLen>0) byte(encoding) stored[storedLen] crc32c_le(stored)
//	terminator := uvarint(0)
//
// storedLen covers the stored (possibly compressed) payload bytes; the CRC
// is CRC32C (Castagnoli) over exactly those bytes, little-endian, so a frame
// can be integrity-checked without decompressing it. encoding selects how
// the payload is stored: raw or DEFLATE (compress/flate, stdlib). The
// explicit zero-length terminator distinguishes a cleanly closed log from a
// truncated one — a plain EOF before the terminator is an error, never a
// silently shorter log, matching the strictness of the text parsers.
//
// Frames are self-contained: a reader needs no state from earlier frames to
// decode a later one, which is what makes segment rotation (each segment a
// complete mini-log) and mid-stream tooling cheap.
package logio

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// encodingRaw stores the payload verbatim.
	encodingRaw = 0
	// encodingFlate stores the payload DEFLATE-compressed.
	encodingFlate = 1

	// MaxFrame bounds a stored frame payload. It exists so a corrupt or
	// hostile length prefix cannot drive a multi-gigabyte allocation; real
	// frames (a few thousand events) are kilobytes.
	MaxFrame = 1 << 26

	// CompressMin is the stored-payload size below which WriteFrame skips
	// compression: tiny frames (a near-empty ingress batch) cost more in
	// DEFLATE block overhead than they save.
	CompressMin = 512
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FrameWriter writes the framed binary container onto an io.Writer. Callers
// write their header line first (w is not buffered on their behalf until the
// first frame), then any number of frames, then Close to emit the terminator.
type FrameWriter struct {
	bw   *bufio.Writer
	comp *flate.Writer
	cbuf bytes.Buffer
	head [binary.MaxVarintLen64 + 1]byte
	err  error
}

// NewFrameWriter creates a frame writer on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteFrame appends one frame holding payload. When compress is set and the
// payload is large enough to benefit, it is stored DEFLATE-compressed
// (falling back to raw storage if compression does not shrink it).
func (fw *FrameWriter) WriteFrame(payload []byte, compress bool) error {
	if fw.err != nil {
		return fw.err
	}
	if len(payload) == 0 {
		return fw.fail(errors.New("logio: empty frame payload"))
	}
	if len(payload) > MaxFrame {
		return fw.fail(fmt.Errorf("logio: frame payload %d bytes exceeds limit %d", len(payload), MaxFrame))
	}
	stored, enc := payload, byte(encodingRaw)
	if compress && len(payload) >= CompressMin {
		fw.cbuf.Reset()
		if fw.comp == nil {
			fw.comp, _ = flate.NewWriter(&fw.cbuf, flate.BestSpeed)
		} else {
			fw.comp.Reset(&fw.cbuf)
		}
		if _, err := fw.comp.Write(payload); err != nil {
			return fw.fail(err)
		}
		if err := fw.comp.Close(); err != nil {
			return fw.fail(err)
		}
		if fw.cbuf.Len() < len(payload) {
			stored, enc = fw.cbuf.Bytes(), encodingFlate
		}
	}
	n := binary.PutUvarint(fw.head[:], uint64(len(stored)))
	fw.head[n] = enc
	if _, err := fw.bw.Write(fw.head[:n+1]); err != nil {
		return fw.fail(err)
	}
	if _, err := fw.bw.Write(stored); err != nil {
		return fw.fail(err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(stored, crcTable))
	if _, err := fw.bw.Write(crc[:]); err != nil {
		return fw.fail(err)
	}
	return nil
}

// Flush pushes buffered bytes to the underlying writer without terminating
// the log (streaming sinks flush at event-batch boundaries).
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.bw.Flush(); err != nil {
		return fw.fail(err)
	}
	return nil
}

// Close writes the terminator frame and flushes. It does not close the
// underlying writer. The FrameWriter must not be used afterwards.
func (fw *FrameWriter) Close() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.bw.WriteByte(0); err != nil { // uvarint(0) terminator
		return fw.fail(err)
	}
	if err := fw.bw.Flush(); err != nil {
		return fw.fail(err)
	}
	fw.err = errors.New("logio: writer closed")
	return nil
}

func (fw *FrameWriter) fail(err error) error {
	fw.err = err
	return err
}

// FrameReader reads the framed container back. Any structural deviation —
// truncation before the terminator, an oversized length, a CRC mismatch, a
// corrupt DEFLATE stream — is an error; no partial frame is ever returned.
type FrameReader struct {
	br     *bufio.Reader
	stored []byte
	plain  bytes.Buffer
	fl     io.ReadCloser
	done   bool
}

// NewFrameReader creates a frame reader on r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next frame's decoded payload, or io.EOF after the
// terminator frame. The returned slice is only valid until the next call.
func (fr *FrameReader) Next() ([]byte, error) {
	if fr.done {
		return nil, io.EOF
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, fmt.Errorf("logio: truncated log: missing frame header (no terminator seen): %w", err)
	}
	if n == 0 {
		fr.done = true
		return nil, io.EOF
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("logio: frame length %d exceeds limit %d", n, MaxFrame)
	}
	enc, err := fr.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("logio: truncated frame: missing encoding byte: %w", eofy(err))
	}
	if uint64(cap(fr.stored)) < n {
		fr.stored = make([]byte, n)
	}
	fr.stored = fr.stored[:n]
	if _, err := io.ReadFull(fr.br, fr.stored); err != nil {
		return nil, fmt.Errorf("logio: truncated frame payload: %w", eofy(err))
	}
	var crc [4]byte
	if _, err := io.ReadFull(fr.br, crc[:]); err != nil {
		return nil, fmt.Errorf("logio: truncated frame checksum: %w", eofy(err))
	}
	if want, got := binary.LittleEndian.Uint32(crc[:]), crc32.Checksum(fr.stored, crcTable); want != got {
		return nil, fmt.Errorf("logio: frame checksum mismatch: stored %08x, computed %08x", want, got)
	}
	switch enc {
	case encodingRaw:
		return fr.stored, nil
	case encodingFlate:
		fr.plain.Reset()
		if fr.fl == nil {
			fr.fl = flate.NewReader(bytes.NewReader(fr.stored))
		} else {
			fr.fl.(flate.Resetter).Reset(bytes.NewReader(fr.stored), nil)
		}
		if _, err := io.CopyN(&fr.plain, fr.fl, MaxFrame+1); err != io.EOF {
			if err == nil {
				return nil, fmt.Errorf("logio: decompressed frame exceeds limit %d", MaxFrame)
			}
			return nil, fmt.Errorf("logio: corrupt compressed frame: %w", err)
		}
		return fr.plain.Bytes(), nil
	default:
		return nil, fmt.Errorf("logio: unknown frame encoding %d", enc)
	}
}

// eofy maps a bare io.EOF to io.ErrUnexpectedEOF: inside a frame, EOF is
// always truncation.
func eofy(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Dec is a bounds-checked decoder over one frame payload. All reads fail
// softly (Err sticks) so loaders can decode a record and check the error
// once, and corrupt input can never index out of range or panic.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes remaining.
func (d *Dec) Len() int { return len(d.b) }

// Uvarint decodes one unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = errors.New("logio: corrupt record: bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint decodes one signed (zigzag) varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = errors.New("logio: corrupt record: bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte decodes one byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.err = errors.New("logio: corrupt record: unexpected end of frame")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bytes decodes n raw bytes (a view into the frame, valid until the next
// FrameReader.Next call).
func (d *Dec) Bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("logio: corrupt record: %d payload bytes wanted, %d remain in frame", n, len(d.b))
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

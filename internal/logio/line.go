package logio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// MaxLine bounds one line of the text log formats. The schedule and ingress
// text loaders share this limit (historically the schedule loader used the
// 64KB bufio default while the ingress loader allowed 1MB — an asymmetry
// where a long-payload ingress line saved by one tool failed to load in
// another); 1MB comfortably covers any real line of either format.
const MaxLine = 1 << 20

// LineScanner returns a bufio.Scanner guarded to MaxLine, the one line
// reader every text log loader uses.
func LineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLine)
	return sc
}

// ScanErr converts a scanner error into a loader error, turning the opaque
// bufio.ErrTooLong into an actionable message carrying the limit and the
// offending line number. A nil error passes through.
func ScanErr(err error, format string, line int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%s: line %d exceeds the %d-byte line limit", format, line+1, MaxLine)
	}
	return fmt.Errorf("%s: line %d: %w", format, line+1, err)
}

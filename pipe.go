package qithread

import (
	"fmt"
	"sync"

	"qithread/internal/core"
	"qithread/internal/domain"
)

// Pipe is a deterministic, bounded, in-order message channel between
// threads. It is the counterpart of Parrot's network wrappers: where Parrot
// interposes on socket operations so inter-process byte streams are
// scheduled deterministically, this reproduction models connections as
// in-process message pipes whose Send and Recv are ordinary synchronization
// operations under the turn. A Pipe composes the runtime's Mutex and Cond
// wrappers, so every policy (BoostBlocked, WakeAMAP, ...) applies to pipe
// traffic exactly as it does to hand-written queues.
type Pipe struct {
	rt       *Runtime
	name     string
	m        *Mutex
	notEmpty *Cond
	notFull  *Cond
	capacity int

	// buf and closed are guarded by m.
	buf    []any
	closed bool
}

// NewPipe creates a pipe with the given capacity (at least 1).
func (rt *Runtime) NewPipe(t *Thread, name string, capacity int) *Pipe {
	if capacity < 1 {
		capacity = 1
	}
	return &Pipe{
		rt:       rt,
		name:     name,
		m:        rt.NewMutex(t, name+".m"),
		notEmpty: rt.NewCond(t, name+".ne"),
		notFull:  rt.NewCond(t, name+".nf"),
		capacity: capacity,
	}
}

// Send enqueues v, blocking while the pipe is full. It reports false once
// the pipe is closed — whether it was closed before the call or concurrently,
// while the sender was still blocked waiting for space. In both cases the
// message is dropped: a false return guarantees no receiver ever observes v,
// and a true return guarantees v was enqueued, mirroring the closed-socket
// write semantics this type models. (Like the rest of the pipe, the outcome
// is deterministic: whether a given Send beats a given Close is fixed by the
// schedule, not by real-time racing.)
func (p *Pipe) Send(t *Thread, v any) bool {
	p.m.Lock(t)
	for len(p.buf) >= p.capacity && !p.closed {
		p.notFull.Wait(t, p.m)
	}
	if p.closed {
		p.m.Unlock(t)
		return false
	}
	p.buf = append(p.buf, v)
	p.m.Unlock(t)
	p.notEmpty.Signal(t)
	return true
}

// Recv dequeues the next message, blocking while the pipe is empty. It
// reports false once the pipe is closed and drained.
func (p *Pipe) Recv(t *Thread) (any, bool) {
	p.m.Lock(t)
	for len(p.buf) == 0 && !p.closed {
		p.notEmpty.Wait(t, p.m)
	}
	if len(p.buf) == 0 {
		p.m.Unlock(t)
		return nil, false
	}
	v := p.buf[0]
	p.buf = p.buf[1:]
	p.m.Unlock(t)
	p.notFull.Signal(t)
	return v, true
}

// TryRecv dequeues without blocking; ok reports whether a message was
// available.
func (p *Pipe) TryRecv(t *Thread) (v any, ok bool) {
	p.m.Lock(t)
	if len(p.buf) > 0 {
		v, ok = p.buf[0], true
		p.buf = p.buf[1:]
	}
	p.m.Unlock(t)
	if ok {
		p.notFull.Signal(t)
	}
	return v, ok
}

// Len returns the number of queued messages.
func (p *Pipe) Len(t *Thread) int {
	p.m.Lock(t)
	n := len(p.buf)
	p.m.Unlock(t)
	return n
}

// SendAll sends every message of vs in order, moving up to the pipe's
// capacity per mutex acquisition — the in-domain analogue of XPipe.SendAll:
// one lock round and one receiver wake-up per batch instead of one per
// message. It returns the number of messages sent: len(vs), or fewer if the
// pipe was closed while the sender was blocked (the remainder is dropped, as
// with Send). An empty vs sends nothing. Messages beyond the pipe's capacity
// are delivered across several batches, so a single SendAll may interleave
// with other senders at batch granularity (each batch itself is atomic).
func (p *Pipe) SendAll(t *Thread, vs []any) int {
	if len(vs) == 0 {
		return 0
	}
	sent := 0
	p.m.Lock(t)
	for sent < len(vs) {
		for len(p.buf) >= p.capacity && !p.closed {
			p.notFull.Wait(t, p.m)
		}
		if p.closed {
			break
		}
		for len(p.buf) < p.capacity && sent < len(vs) {
			p.buf = append(p.buf, vs[sent])
			sent++
		}
		p.notEmpty.Broadcast(t)
	}
	p.m.Unlock(t)
	return sent
}

// RecvUpTo receives up to min(len(dst), capacity) messages into dst in one
// mutex acquisition, blocking until that many are queued or the pipe is
// closed — the in-domain analogue of XPipe.RecvUpTo, with the same contract:
// n is the number of messages stored, ok is false only once the pipe is
// closed and drained, and an empty dst receives nothing. A request larger
// than the pipe's capacity is clamped to the capacity (it could otherwise
// never be satisfied by a full pipe).
func (p *Pipe) RecvUpTo(t *Thread, dst []any) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	want := len(dst)
	if want > p.capacity {
		want = p.capacity
	}
	p.m.Lock(t)
	for len(p.buf) < want && !p.closed {
		p.notEmpty.Wait(t, p.m)
	}
	n = len(p.buf)
	if n > want {
		n = want
	}
	if n == 0 {
		p.m.Unlock(t)
		return 0, false
	}
	copy(dst, p.buf[:n])
	p.buf = p.buf[n:]
	p.m.Unlock(t)
	p.notFull.Broadcast(t)
	return n, true
}

// Close marks the pipe closed and wakes all blocked senders and receivers.
// Queued messages remain receivable; further sends fail.
func (p *Pipe) Close(t *Thread) {
	p.m.Lock(t)
	p.closed = true
	p.m.Unlock(t)
	p.notEmpty.Broadcast(t)
	p.notFull.Broadcast(t)
}

// XPipe is the sequenced cross-domain pipe: the only legal way for threads
// of different scheduler domains to communicate. Where a Pipe composes
// in-domain Mutex and Cond wrappers, an XPipe is a scheduler boundary: a
// send or receive executes under the calling thread's own domain turn and
// HOLDS that turn while it blocks in real time for the peer domain, so the
// operation occupies exactly one deterministic slot in its domain's schedule
// no matter how the two domains' real speeds interleave. Each completed
// delivery is stamped with the sender's and receiver's domain-local schedule
// positions; the stamps form the runtime's delivery log (DeliveryLog), the
// canonical record of cross-domain causality that, together with the
// per-domain schedules, fingerprints a partitioned execution.
//
// Because a blocked boundary operation stalls its whole domain, XPipes are
// rendezvous points, not free-running queues: place them off the hot paths
// (work distribution, result collection). Cross-domain deadlock — two
// domains blocked on each other's pipes — is possible exactly as in a Kahn
// process network; it is deterministic (every run hangs identically) but not
// detected by the per-domain deadlock checkers, which see a turn-holding
// thread as running.
//
// In Nondet mode an XPipe degrades to a plain buffered channel, so
// partitioned workloads run unchanged under the nondeterministic baseline.
type XPipe struct {
	rt       *Runtime
	name     string
	from, to *Domain
	ch       *domain.Channel // nil in Nondet mode

	// Nondet fallback state.
	nmu      sync.Mutex
	ncv      *sync.Cond
	nbuf     []xmsg
	nclosed  bool
	capacity int
}

// xmsg is one Nondet-mode message with the sender's virtual time.
type xmsg struct {
	v  any
	vt int64
}

// NewXPipe creates a sequenced pipe from one scheduler domain to another
// (they must differ — within a domain use NewPipe, which the turn already
// orders). Any sender-domain thread may send, any receiver-domain thread may
// receive, and only sender-domain threads may close. XPipes must be created
// deterministically (by setup code or the main thread): creation order
// assigns the pipe id that orders the delivery log.
func (rt *Runtime) NewXPipe(name string, from, to *Domain, capacity int) *XPipe {
	if from == nil || to == nil {
		panic("qithread: XPipe endpoints must be non-nil")
	}
	if from == to {
		panic(fmt.Sprintf("qithread: XPipe %q has both endpoints in %s; use NewPipe within a domain", name, from.label()))
	}
	if capacity < 1 {
		capacity = 1
	}
	p := &XPipe{rt: rt, name: name, from: from, to: to, capacity: capacity}
	if rt.det() {
		p.ch = rt.group.NewChannel(name, from.inner, to.inner, capacity)
	} else {
		p.ncv = sync.NewCond(&p.nmu)
	}
	return p
}

// From returns the sender domain.
func (p *XPipe) From() *Domain { return p.from }

// To returns the receiver domain.
func (p *XPipe) To() *Domain { return p.to }

// Send enqueues v, blocking while the pipe is full. It reports false if the
// pipe was closed (the message is then dropped). The caller must belong to
// the sender domain.
func (p *XPipe) Send(t *Thread, v any) bool {
	if !p.rt.det() {
		t.vAdd(t.vCost())
		p.nmu.Lock()
		for len(p.nbuf) >= p.capacity && !p.nclosed {
			p.ncv.Wait()
		}
		if p.nclosed {
			p.nmu.Unlock()
			return false
		}
		p.nbuf = append(p.nbuf, xmsg{v: v, vt: t.VNow()})
		p.ncv.Broadcast()
		p.nmu.Unlock()
		return true
	}
	s := p.from.enter(t, "xpipe sender end", p.name)
	s.GetTurn(t.ct)
	ok := p.ch.Send(t.ct, v)
	s.TraceOp(t.ct, core.OpXPipeSend, p.ch.ID(), core.StatusOK)
	t.release()
	return ok
}

// Recv dequeues the next message, blocking while the pipe is empty and open.
// It reports false once the pipe is closed and drained. The receiver's
// virtual clock is raised to the sender's send-time clock (the cross-domain
// happens-before edge). The caller must belong to the receiver domain.
func (p *XPipe) Recv(t *Thread) (any, bool) {
	if !p.rt.det() {
		p.nmu.Lock()
		for len(p.nbuf) == 0 && !p.nclosed {
			p.ncv.Wait()
		}
		if len(p.nbuf) == 0 {
			p.nmu.Unlock()
			return nil, false
		}
		m := p.nbuf[0]
		p.nbuf = p.nbuf[1:]
		p.ncv.Broadcast()
		p.nmu.Unlock()
		t.vMeet(m.vt)
		t.vAdd(t.vCost())
		return m.v, true
	}
	s := p.to.enter(t, "xpipe receiver end", p.name)
	s.GetTurn(t.ct)
	v, ok := p.ch.Recv(t.ct)
	s.TraceOp(t.ct, core.OpXPipeRecv, p.ch.ID(), core.StatusOK)
	t.release()
	return v, ok
}

// SendAll sends every message of vs in order, moving up to the pipe's
// capacity per turn-holding boundary slot: each batch costs one schedule
// slot, one channel lock acquisition, and one receiver wake-up, instead of
// one of each per message. When len(vs) <= capacity — the intended shape:
// size the pipe for the program's natural transfer unit — the whole call is
// a single boundary slot. Batch sizes are deterministic (always
// min(remaining, capacity), never dependent on the receiver's real-time
// progress), and the per-batch stamps expand into per-message Delivery
// entries identical to the same messages sent one Send at a time under a
// retained turn. It returns the number of messages sent: len(vs), or fewer
// if the pipe was closed (the rest are dropped). An empty vs sends nothing
// and occupies no schedule slot. The caller must belong to the sender
// domain.
func (p *XPipe) SendAll(t *Thread, vs []any) int {
	if len(vs) == 0 {
		return 0
	}
	if !p.rt.det() {
		sent := 0
		p.nmu.Lock()
		for sent < len(vs) {
			for len(p.nbuf) >= p.capacity && !p.nclosed {
				p.ncv.Wait()
			}
			if p.nclosed {
				break
			}
			vt := t.VNow()
			for len(p.nbuf) < p.capacity && sent < len(vs) {
				p.nbuf = append(p.nbuf, xmsg{v: vs[sent], vt: vt})
				sent++
			}
			p.ncv.Broadcast()
			t.vAdd(t.vCost())
		}
		p.nmu.Unlock()
		return sent
	}
	s := p.from.enter(t, "xpipe sender end", p.name)
	sent := 0
	for sent < len(vs) {
		s.GetTurn(t.ct)
		n := p.ch.SendBatch(t.ct, vs[sent:])
		s.TraceOp(t.ct, core.OpXPipeSend, p.ch.ID(), core.StatusOK)
		t.release()
		if n == 0 {
			break // closed: the remaining messages are dropped
		}
		sent += n
	}
	return sent
}

// RecvUpTo receives up to min(len(dst), capacity) messages into dst in one
// turn-holding boundary slot: one schedule slot, one channel lock
// acquisition, one sender wake-up. It blocks until that many messages are
// queued or the pipe is closed; once closed the remainder is fixed by the
// sender domain's schedule, so the count returned is deterministic either
// way. The receiver's virtual clock is raised to the latest send-time clock
// among the delivered messages. It reports ok=false only once the pipe is
// closed and drained; n is the number of messages stored into dst. An empty
// dst receives nothing and occupies no schedule slot. The caller must
// belong to the receiver domain.
func (p *XPipe) RecvUpTo(t *Thread, dst []any) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	if !p.rt.det() {
		want := len(dst)
		if want > p.capacity {
			want = p.capacity
		}
		p.nmu.Lock()
		for len(p.nbuf) < want && !p.nclosed {
			p.ncv.Wait()
		}
		n = len(p.nbuf)
		if n > want {
			n = want
		}
		if n == 0 {
			p.nmu.Unlock()
			return 0, false
		}
		var vmax int64
		for i := 0; i < n; i++ {
			m := p.nbuf[i]
			dst[i] = m.v
			if m.vt > vmax {
				vmax = m.vt
			}
		}
		p.nbuf = p.nbuf[n:]
		p.ncv.Broadcast()
		p.nmu.Unlock()
		t.vMeet(vmax)
		t.vAdd(t.vCost())
		return n, true
	}
	s := p.to.enter(t, "xpipe receiver end", p.name)
	s.GetTurn(t.ct)
	n, ok = p.ch.RecvBatch(t.ct, dst)
	s.TraceOp(t.ct, core.OpXPipeRecv, p.ch.ID(), core.StatusOK)
	t.release()
	return n, ok
}

// Close marks the pipe closed and wakes blocked peers. Queued messages
// remain receivable; further sends fail. Only sender-domain threads may
// close — the sender domain's schedule then totally orders every send
// against the close, keeping Send's result deterministic (receivers signal
// shutdown through a reverse XPipe).
func (p *XPipe) Close(t *Thread) {
	if !p.rt.det() {
		p.nmu.Lock()
		p.nclosed = true
		p.ncv.Broadcast()
		p.nmu.Unlock()
		return
	}
	s := p.from.enter(t, "xpipe sender end", p.name)
	s.GetTurn(t.ct)
	p.ch.Close(t.ct)
	s.TraceOp(t.ct, core.OpXPipeClose, p.ch.ID(), core.StatusOK)
	t.release()
}

package qithread

// Pipe is a deterministic, bounded, in-order message channel between
// threads. It is the counterpart of Parrot's network wrappers: where Parrot
// interposes on socket operations so inter-process byte streams are
// scheduled deterministically, this reproduction models connections as
// in-process message pipes whose Send and Recv are ordinary synchronization
// operations under the turn. A Pipe composes the runtime's Mutex and Cond
// wrappers, so every policy (BoostBlocked, WakeAMAP, ...) applies to pipe
// traffic exactly as it does to hand-written queues.
type Pipe struct {
	rt       *Runtime
	name     string
	m        *Mutex
	notEmpty *Cond
	notFull  *Cond
	capacity int

	// buf and closed are guarded by m.
	buf    []any
	closed bool
}

// NewPipe creates a pipe with the given capacity (at least 1).
func (rt *Runtime) NewPipe(t *Thread, name string, capacity int) *Pipe {
	if capacity < 1 {
		capacity = 1
	}
	return &Pipe{
		rt:       rt,
		name:     name,
		m:        rt.NewMutex(t, name+".m"),
		notEmpty: rt.NewCond(t, name+".ne"),
		notFull:  rt.NewCond(t, name+".nf"),
		capacity: capacity,
	}
}

// Send enqueues v, blocking while the pipe is full. It reports false if the
// pipe was closed (the message is then dropped, like writing to a closed
// socket).
func (p *Pipe) Send(t *Thread, v any) bool {
	p.m.Lock(t)
	for len(p.buf) >= p.capacity && !p.closed {
		p.notFull.Wait(t, p.m)
	}
	if p.closed {
		p.m.Unlock(t)
		return false
	}
	p.buf = append(p.buf, v)
	p.m.Unlock(t)
	p.notEmpty.Signal(t)
	return true
}

// Recv dequeues the next message, blocking while the pipe is empty. It
// reports false once the pipe is closed and drained.
func (p *Pipe) Recv(t *Thread) (any, bool) {
	p.m.Lock(t)
	for len(p.buf) == 0 && !p.closed {
		p.notEmpty.Wait(t, p.m)
	}
	if len(p.buf) == 0 {
		p.m.Unlock(t)
		return nil, false
	}
	v := p.buf[0]
	p.buf = p.buf[1:]
	p.m.Unlock(t)
	p.notFull.Signal(t)
	return v, true
}

// TryRecv dequeues without blocking; ok reports whether a message was
// available.
func (p *Pipe) TryRecv(t *Thread) (v any, ok bool) {
	p.m.Lock(t)
	if len(p.buf) > 0 {
		v, ok = p.buf[0], true
		p.buf = p.buf[1:]
	}
	p.m.Unlock(t)
	if ok {
		p.notFull.Signal(t)
	}
	return v, ok
}

// Len returns the number of queued messages.
func (p *Pipe) Len(t *Thread) int {
	p.m.Lock(t)
	n := len(p.buf)
	p.m.Unlock(t)
	return n
}

// Close marks the pipe closed and wakes all blocked senders and receivers.
// Queued messages remain receivable; further sends fail.
func (p *Pipe) Close(t *Thread) {
	p.m.Lock(t)
	p.closed = true
	p.m.Unlock(t)
	p.notEmpty.Broadcast(t)
	p.notFull.Broadcast(t)
}

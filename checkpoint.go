package qithread

import (
	"fmt"
	"io"

	"qithread/internal/ckpt"
	"qithread/internal/core"
)

// Epoch checkpoints. A long recorded run periodically snapshots its
// deterministic state at quiescent admission boundaries; a later replay
// loads one snapshot and continues from there (qireplay -from-checkpoint)
// instead of re-executing the whole prefix, reproducing the exact
// fingerprint and admit/shed hashes of the full run. The mechanism is
// documented bottom-up in internal/core/checkpoint.go (what a scheduler
// snapshot is and why no goroutine stack is ever serialized) and
// internal/ckpt (the file format); this file is the user-facing surface:
//
//	record:  cp, err := rt.Checkpoint(t, appState)   // at an epoch boundary
//	         SaveCheckpoint(f, cp)
//	resume:  cp, _ := LoadCheckpoint(f)
//	         rt := New(Config{..., Record: true, Resume: cp})
//	         rt.Run(func(t *Thread) {
//	             ... re-run setup: create objects, park workers ...
//	             if err := rt.Resume(t); err != nil { ... }
//	             ... continue the admission loop from cp.Epoch()+1 ...
//	         })
//
// The contract is structural replay: the resuming program re-executes its
// SETUP (thread registration, object creation, workers parking) with
// recording muted, and Resume verifies that the rebuilt structure matches
// the snapshot before reinstating counters, clocks, policy words and running
// hashes. Programs built for checkpointing therefore keep setup separate
// from progress (the workload carries progress in the checkpoint's App
// payload) — the same discipline any restartable server already follows.

// Checkpoint is a point-in-time snapshot of a deterministic execution at a
// quiescent epoch boundary.
type Checkpoint struct {
	rec *ckpt.Record
}

// Epoch returns the ingress epoch the checkpoint was taken at (0 when no
// gateway was registered).
func (cp *Checkpoint) Epoch() int64 { return cp.rec.Epoch }

// App returns the application's own progress payload, exactly as passed to
// Runtime.Checkpoint.
func (cp *Checkpoint) App() []byte { return cp.rec.App }

// SaveCheckpoint writes a checkpoint ("qithread-checkpoint v1b", a
// CRC-checked binary record; see internal/ckpt).
func SaveCheckpoint(w io.Writer, cp *Checkpoint) error {
	return ckpt.Save(w, cp.rec)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	rec, err := ckpt.Load(r)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{rec: rec}, nil
}

// maxQuiescenceYields bounds the yield loop that drives the scheduler to a
// quiescent boundary. A program whose threads keep waking each other never
// quiesces; the bound turns that into a diagnostic instead of a hang.
const maxQuiescenceYields = 1 << 20

// Quiescent reports whether t is the sole runnable thread of its domain with
// no pending wake-up and no timed waiter — the state in which Checkpoint is
// legal. Yielding lets woken-but-unparked threads run until they block, so
//
//	for !rt.Quiescent(t) { t.Yield() }
//
// deterministically drives the domain to a boundary (the yield count is a
// function of the schedule, not of real time).
func (rt *Runtime) Quiescent(t *Thread) bool {
	if !rt.det() {
		panic("qithread: Quiescent requires a deterministic Mode")
	}
	s := t.dom.sched
	s.GetTurn(t.ct)
	q := s.Quiescent(t.ct)
	t.release()
	return q
}

// quiesce drives t's domain to a quiescent boundary with traced yields. The
// yields release through PutTurn directly, not Thread.release: a policy turn
// retention (WakeAMAP keeps the turn with a waker that has threads in the
// wake-up queue) would otherwise extend t's turn at every release point and
// the woken threads would never run — the drive must force real handoffs.
func (rt *Runtime) quiesce(t *Thread, what string) error {
	s := t.dom.sched
	for i := 0; ; i++ {
		s.GetTurn(t.ct)
		if s.Quiescent(t.ct) {
			return nil // the caller proceeds under this turn hold
		}
		if i >= maxQuiescenceYields {
			dump := s.Dump()
			s.PutTurn(t.ct)
			return fmt.Errorf("qithread: %s: domain %d did not quiesce after %d yields; threads are waking each other across the boundary\n%s", what, t.dom.id, maxQuiescenceYields, dump)
		}
		s.TraceOp(t.ct, core.OpYield, 0, core.StatusOK)
		s.PutTurn(t.ct)
	}
}

// Checkpoint snapshots the execution's deterministic state: t's domain's
// scheduler (counters, clocks, wait-list order, running hashes — never
// goroutine stacks), the cross-domain channel stamps, and every ingress
// gateway's admission state. app, when non-nil, serializes the program's own
// progress payload, stored verbatim (the runtime cannot reconstruct
// application state; the workload encodes what it needs to continue). It is
// called at the quiescent boundary itself — after every other thread has
// drained and parked, so it observes their final pre-checkpoint effects —
// and must not perform synchronization operations.
//
// The call first drives t's domain to a quiescent boundary by yielding —
// deterministically, so a replaying run that checkpoints at the same epochs
// traces identical schedules. Every other domain must be idle (no live
// threads, nothing recorded): checkpointing is an admission-boundary
// mechanism, and cross-domain traffic must be drained first.
func (rt *Runtime) Checkpoint(t *Thread, app func() []byte) (*Checkpoint, error) {
	if !rt.det() {
		return nil, fmt.Errorf("qithread: Checkpoint requires a deterministic Mode")
	}
	if !rt.cfg.Record {
		return nil, fmt.Errorf("qithread: Checkpoint requires Record (the snapshot embeds the running trace hash)")
	}
	if err := rt.quiesce(t, "Checkpoint"); err != nil {
		return nil, err
	}
	// The turn is held from here to the release below.
	var payload []byte
	if app != nil {
		payload = app()
	}
	s := t.dom.sched
	st, err := s.CaptureState(t.ct)
	if err != nil {
		t.release()
		return nil, err
	}
	rec := &ckpt.Record{
		Domains: []core.SchedState{*st},
		Xseqs:   []int64{t.dom.inner.Xseq()},
		App:     payload,
	}
	err = func() error {
		for _, d := range rt.allDomains() {
			if d == t.dom || d.sched == nil {
				continue
			}
			if live, n := d.sched.Live(), d.sched.TraceLen(); live != 0 || n != 0 {
				return fmt.Errorf("qithread: Checkpoint from %s, but %s is active (%d live threads, %d recorded events); checkpoint boundaries require every other domain idle", t.dom.label(), d.label(), live, n)
			}
		}
		if rt.group != nil {
			for _, c := range rt.group.Channels() {
				cs, err := c.CaptureState()
				if err != nil {
					return err
				}
				rec.Channels = append(rec.Channels, *cs)
			}
		}
		for _, gw := range rt.allGateways() {
			rec.Gateways = append(rec.Gateways, *gw.g.CaptureState())
		}
		if len(rec.Gateways) > 0 {
			rec.Epoch = rec.Gateways[0].Epoch
		}
		return nil
	}()
	t.release()
	if err != nil {
		return nil, err
	}
	return &Checkpoint{rec: rec}, nil
}

// Resume verifies that the program's re-executed setup phase rebuilt exactly
// the structure of Config.Resume's snapshot, then reinstates every counter,
// clock, policy word and running hash and unmutes recording. From its return
// the execution is the recorded run's continuation: the same threads are
// eligible in the same order, the trace hash continues from the same fold
// state, replayed ingress batches land on the same epochs, and the run's
// final fingerprint equals the uncheckpointed run's.
func (rt *Runtime) Resume(t *Thread) error {
	if !rt.det() {
		return fmt.Errorf("qithread: Resume requires a deterministic Mode")
	}
	cp := rt.cfg.Resume
	if cp == nil {
		return fmt.Errorf("qithread: Resume without Config.Resume")
	}
	rec := cp.rec
	if len(rec.Domains) != 1 {
		return fmt.Errorf("qithread: checkpoint holds %d domain snapshots, want 1", len(rec.Domains))
	}
	if got, want := t.dom.id, rec.Domains[0].DomainID; got != want {
		return fmt.Errorf("qithread: Resume from domain %d, but the checkpoint was taken in domain %d", got, want)
	}
	if err := rt.quiesce(t, "Resume"); err != nil {
		return err
	}
	// The turn is held from here to the release below.
	err := func() error {
		for _, d := range rt.allDomains() {
			if d == t.dom || d.sched == nil {
				continue
			}
			if live := d.sched.Live(); live != 0 {
				return fmt.Errorf("qithread: Resume with %d live threads in %s; the checkpoint had every other domain idle", live, d.label())
			}
		}
		chans := rt.group.Channels()
		if len(chans) != len(rec.Channels) {
			return fmt.Errorf("qithread: setup created %d channels, checkpoint has %d", len(chans), len(rec.Channels))
		}
		for i, c := range chans {
			if err := c.RestoreState(&rec.Channels[i]); err != nil {
				return err
			}
		}
		gws := rt.allGateways()
		if len(gws) != len(rec.Gateways) {
			return fmt.Errorf("qithread: setup created %d gateways, checkpoint has %d", len(gws), len(rec.Gateways))
		}
		for i, gw := range gws {
			if err := gw.g.RestoreState(&rec.Gateways[i]); err != nil {
				return err
			}
		}
		t.dom.inner.SetXseq(rec.Xseqs[0])
		// The scheduler restore comes last: it verifies the rebuilt thread
		// and wait-list structure and unmutes recording.
		return t.dom.sched.RestoreState(t.ct, &rec.Domains[0])
	}()
	t.release()
	return err
}

// allGateways snapshots the gateway registry in creation order.
func (rt *Runtime) allGateways() []*Gateway {
	rt.domMu.Lock()
	defer rt.domMu.Unlock()
	out := make([]*Gateway, len(rt.gateways))
	copy(out, rt.gateways)
	return out
}
